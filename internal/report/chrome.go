package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/machine"
	"repro/internal/trace"
)

// TraceProcess is one simulated machine's event stream prepared for the
// Chrome trace-event exporter. FreqGHz converts virtual cycles to the
// microsecond timestamps the format requires; Name labels the process
// track in the viewer (e.g. "fig5a/Interleave+AutoNUMA"). Snapshots, when
// present, additionally render as counter tracks (DRAM locality, faults
// and migrations, cache misses over time).
type TraceProcess struct {
	Name      string
	FreqGHz   float64
	Events    []trace.Event
	Snapshots []machine.Snapshot
}

// chromeEvent is one entry of the Chrome trace-event JSON array. Fields
// are marshalled in declaration order, so output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace writes the processes' event streams as a Chrome trace-event
// JSON array, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Each process gets its own pid with a process_name metadata record;
// within a process, tid 0 is the kernel-daemon track and tid n+1 is
// simulated thread n. Events with a cost become duration ("X") slices;
// costless placement events become instants ("i"). Timestamps are virtual
// cycles converted to microseconds at the process's clock, so the output
// is byte-identical for identical event streams.
func ChromeTrace(w io.Writer, procs ...TraceProcess) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}
	for pid, p := range procs {
		freq := p.FreqGHz
		if freq <= 0 {
			freq = 1
		}
		err := emit(chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]any{"name": p.Name},
		})
		if err != nil {
			return err
		}
		for _, e := range p.Events {
			ev := chromeEvent{
				Name: e.Kind.String(),
				Ts:   e.Cycle / (freq * 1e3), // cycles -> µs
				Pid:  pid,
				Tid:  int(e.Thread) + 1, // tid 0 = kernel daemons
				Args: map[string]any{},
			}
			if e.From >= 0 {
				ev.Args["from_node"] = int(e.From)
			}
			if e.To >= 0 {
				ev.Args["to_node"] = int(e.To)
			}
			if e.Addr != 0 || e.Kind == trace.AutoNUMAScan {
				if e.Kind == trace.AutoNUMAScan {
					ev.Args["pages_migrated"] = e.Addr
				} else {
					ev.Args["addr"] = fmt.Sprintf("%#x", e.Addr)
				}
			}
			if e.Cost > 0 {
				ev.Ph = "X"
				ev.Dur = e.Cost / (freq * 1e3)
				ev.Args["cost_cycles"] = e.Cost
			} else {
				ev.Ph = "i"
				ev.S = "t"
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
		// Counter tracks: one "C" event per snapshot per counter group.
		// Cumulative counters plot as monotone staircases; the viewer's
		// deltas between samples show the burst structure. Map args
		// marshal with sorted keys, keeping the output deterministic.
		for _, s := range p.Snapshots {
			ts := s.Cycle / (freq * 1e3)
			c := s.Counters
			groups := []struct {
				name string
				args map[string]any
			}{
				{"dram accesses", map[string]any{
					"local": c.LocalAccesses, "remote": c.RemoteAccesses}},
				{"kernel activity", map[string]any{
					"minor_faults":      c.MinorFaults,
					"page_migrations":   c.PageMigrations,
					"thread_migrations": c.ThreadMigrations}},
				{"cache pressure", map[string]any{
					"llc_misses": c.CacheMisses, "tlb_misses": c.TLBMisses}},
			}
			for _, g := range groups {
				err := emit(chromeEvent{
					Name: g.name,
					Ph:   "C",
					Ts:   ts,
					Pid:  pid,
					Args: g.args,
				})
				if err != nil {
					return err
				}
			}
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// TraceSummary tabulates an event stream: one row per event kind that
// occurred, with its count, total cost and mean cost in cycles.
func TraceSummary(events []trace.Event) *Table {
	var counts [16]uint64
	var costs [16]float64
	for _, e := range events {
		if int(e.Kind) < len(counts) {
			counts[e.Kind]++
			costs[e.Kind] += e.Cost
		}
	}
	t := &Table{
		Title:  "Trace summary",
		Header: []string{"event", "count", "total cost (cycles)", "mean cost"},
	}
	for _, k := range trace.Kinds() {
		if counts[k] == 0 {
			continue
		}
		mean := costs[k] / float64(counts[k])
		t.AddRow(k.String(), counts[k], fmt.Sprintf("%.0f", costs[k]), fmt.Sprintf("%.1f", mean))
	}
	return t
}

// TraceCostHistogram tabulates per-kind cost distributions in power-of-two
// buckets: one row per (kind, bucket) with the event count. Costless
// events (pure placement markers) land in the "0" bucket.
func TraceCostHistogram(events []trace.Event) *Table {
	const maxBucket = 40 // 2^39 cycles ≈ 4 minutes at 2.1GHz; plenty
	hist := map[trace.Kind]*[maxBucket + 1]uint64{}
	for _, e := range events {
		h := hist[e.Kind]
		if h == nil {
			h = &[maxBucket + 1]uint64{}
			hist[e.Kind] = h
		}
		b := 0
		if e.Cost >= 1 {
			b = int(math.Floor(math.Log2(e.Cost))) + 1
			if b > maxBucket {
				b = maxBucket
			}
		}
		h[b]++
	}
	t := &Table{
		Title:  "Trace cost histogram (power-of-two cycle buckets)",
		Header: []string{"event", "cost bucket", "count"},
	}
	for _, k := range trace.Kinds() {
		h := hist[k]
		if h == nil {
			continue
		}
		for b, n := range h {
			if n == 0 {
				continue
			}
			label := "0"
			if b > 0 {
				label = fmt.Sprintf("[%d, %d)", 1<<(b-1), 1<<b)
			}
			t.AddRow(k.String(), label, n)
		}
	}
	return t
}
