package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/machine"
	"repro/internal/span"
	"repro/internal/trace"
)

// TraceProcess is one simulated machine's event stream prepared for the
// Chrome trace-event exporter. FreqGHz converts virtual cycles to the
// microsecond timestamps the format requires; Name labels the process
// track in the viewer (e.g. "fig5a/Interleave+AutoNUMA"). Snapshots, when
// present, additionally render as counter tracks (DRAM locality, faults
// and migrations, cache misses over time). Spans, when present, render as
// request lifelines: per-thread request/queue-wait tracks in the arrival
// clock, service/phase slices on the machine-thread tracks, and flow
// arrows linking each request's arrival to its service execution.
type TraceProcess struct {
	Name      string
	FreqGHz   float64
	Events    []trace.Event
	Snapshots []machine.Snapshot
	Spans     []span.Span
}

// chromeEvent is one entry of the Chrome trace-event JSON array. Fields
// are marshalled in declaration order, so output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// requestBand offsets the per-thread request-lifeline tracks away from the
// machine-thread tracks (tid requestBand+n+1 is thread n's arrival-clock
// lifeline, tid n+1 its cycle-clock execution track).
const requestBand = 1000

// ChromeTrace writes the processes' event streams as a Chrome trace-event
// JSON array, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Each process gets its own pid with a process_name metadata record;
// within a process, tid 0 is the kernel-daemon track and tid n+1 is
// simulated thread n. Events with a cost become duration ("X") slices;
// costless placement events become instants ("i"). Timestamps are virtual
// cycles converted to microseconds at the process's clock, so the output
// is byte-identical for identical event streams.
func ChromeTrace(w io.Writer, procs ...TraceProcess) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}
	for pid, p := range procs {
		freq := p.FreqGHz
		if freq <= 0 {
			freq = 1
		}
		err := emit(chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]any{"name": p.Name},
		})
		if err != nil {
			return err
		}
		for _, e := range p.Events {
			ev := chromeEvent{
				Name: e.Kind.String(),
				Ts:   e.Cycle / (freq * 1e3), // cycles -> µs
				Pid:  pid,
				Tid:  int(e.Thread) + 1, // tid 0 = kernel daemons
				Args: map[string]any{"initiator": e.Initiator.String()},
			}
			if e.From >= 0 {
				ev.Args["from_node"] = int(e.From)
			}
			if e.To >= 0 {
				ev.Args["to_node"] = int(e.To)
			}
			if e.Addr != 0 || e.Kind == trace.AutoNUMAScan {
				if e.Kind == trace.AutoNUMAScan {
					ev.Args["pages_migrated"] = e.Addr
				} else {
					ev.Args["addr"] = fmt.Sprintf("%#x", e.Addr)
				}
			}
			if e.Cost > 0 {
				ev.Ph = "X"
				ev.Dur = e.Cost / (freq * 1e3)
				ev.Args["cost_cycles"] = e.Cost
			} else {
				ev.Ph = "i"
				ev.S = "t"
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
		// Request lifelines: each request span (and its queue-wait child)
		// becomes a slice on its serving thread's arrival-clock band, its
		// service span a slice on the machine-thread track (phases nest
		// inside), and a flow arrow ("s" -> "f") links arrival to
		// execution across the two clock domains. Session spans live in
		// the JSONL only — they overlap freely and would render badly as
		// slices.
		for _, s := range p.Spans {
			ts := s.Start / (freq * 1e3)
			dur := s.Duration() / (freq * 1e3)
			flowID := fmt.Sprintf("%d:%x", pid, s.ID)
			switch s.Kind {
			case span.KindRequest, span.KindQueueWait:
				ev := chromeEvent{
					Name: s.Kind + ":" + s.Name,
					Ph:   "X",
					Ts:   ts,
					Dur:  dur,
					Pid:  pid,
					Tid:  requestBand + s.Thread + 1,
					Args: map[string]any{
						"span_id": fmt.Sprintf("%#x", s.ID),
						"seq":     s.Seq,
						"session": s.Session,
					},
				}
				if err := emit(ev); err != nil {
					return err
				}
				if s.Kind == span.KindRequest {
					err := emit(chromeEvent{
						Name: "request-flow",
						Cat:  "request",
						Ph:   "s",
						Ts:   ts,
						Pid:  pid,
						Tid:  requestBand + s.Thread + 1,
						ID:   flowID,
					})
					if err != nil {
						return err
					}
				}
			case span.KindService, span.KindPhase:
				args := map[string]any{
					"span_id": fmt.Sprintf("%#x", s.ID),
					"seq":     s.Seq,
					"session": s.Session,
				}
				for k, v := range s.Counters {
					args["ctr_"+k] = v
				}
				ev := chromeEvent{
					Name: s.Kind + ":" + s.Name,
					Ph:   "X",
					Ts:   ts,
					Dur:  dur,
					Pid:  pid,
					Tid:  s.Thread + 1,
					Args: args,
				}
				if err := emit(ev); err != nil {
					return err
				}
				if s.Kind == span.KindService {
					err := emit(chromeEvent{
						Name: "request-flow",
						Cat:  "request",
						Ph:   "f",
						Ts:   ts,
						Pid:  pid,
						Tid:  s.Thread + 1,
						ID:   fmt.Sprintf("%d:%x", pid, s.Parent),
						BP:   "e",
					})
					if err != nil {
						return err
					}
				}
			}
		}
		// Counter tracks: one "C" event per snapshot per counter group.
		// Cumulative counters plot as monotone staircases; the viewer's
		// deltas between samples show the burst structure. Map args
		// marshal with sorted keys, keeping the output deterministic.
		for _, s := range p.Snapshots {
			ts := s.Cycle / (freq * 1e3)
			c := s.Counters
			groups := []struct {
				name string
				args map[string]any
			}{
				{"dram accesses", map[string]any{
					"local": c.LocalAccesses, "remote": c.RemoteAccesses}},
				{"kernel activity", map[string]any{
					"minor_faults":      c.MinorFaults,
					"page_migrations":   c.PageMigrations,
					"thread_migrations": c.ThreadMigrations}},
				{"cache pressure", map[string]any{
					"llc_misses": c.CacheMisses, "tlb_misses": c.TLBMisses}},
			}
			for _, g := range groups {
				err := emit(chromeEvent{
					Name: g.name,
					Ph:   "C",
					Ts:   ts,
					Pid:  pid,
					Args: g.args,
				})
				if err != nil {
					return err
				}
			}
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// TraceSummary tabulates an event stream: one row per (event kind,
// initiator) pair that occurred, with its count, total cost and mean cost
// in cycles. The initiator column splits mechanisms shared by several
// actors — page migrations driven by AutoNUMA versus the orchestrator,
// splits forced by khugepaged versus a migration — which is what the
// blame attribution joins against.
func TraceSummary(events []trace.Event) *Table {
	type cell struct {
		count uint64
		cost  float64
	}
	sums := map[trace.Kind]map[trace.Initiator]*cell{}
	for _, e := range events {
		byInit := sums[e.Kind]
		if byInit == nil {
			byInit = map[trace.Initiator]*cell{}
			sums[e.Kind] = byInit
		}
		c := byInit[e.Initiator]
		if c == nil {
			c = &cell{}
			byInit[e.Initiator] = c
		}
		c.count++
		c.cost += e.Cost
	}
	t := &Table{
		Title:  "Trace summary",
		Header: []string{"event", "initiator", "count", "total cost (cycles)", "mean cost"},
	}
	for _, k := range trace.Kinds() {
		byInit := sums[k]
		if byInit == nil {
			continue
		}
		for _, in := range trace.Initiators() {
			c := byInit[in]
			if c == nil {
				continue
			}
			mean := c.cost / float64(c.count)
			t.AddRow(k.String(), in.String(), c.count, fmt.Sprintf("%.0f", c.cost), fmt.Sprintf("%.1f", mean))
		}
	}
	return t
}

// TraceCostHistogram tabulates per-kind cost distributions in power-of-two
// buckets: one row per (kind, bucket) with the event count. Costless
// events (pure placement markers) land in the "0" bucket.
func TraceCostHistogram(events []trace.Event) *Table {
	const maxBucket = 40 // 2^39 cycles ≈ 4 minutes at 2.1GHz; plenty
	hist := map[trace.Kind]*[maxBucket + 1]uint64{}
	for _, e := range events {
		h := hist[e.Kind]
		if h == nil {
			h = &[maxBucket + 1]uint64{}
			hist[e.Kind] = h
		}
		b := 0
		if e.Cost >= 1 {
			b = int(math.Floor(math.Log2(e.Cost))) + 1
			if b > maxBucket {
				b = maxBucket
			}
		}
		h[b]++
	}
	t := &Table{
		Title:  "Trace cost histogram (power-of-two cycle buckets)",
		Header: []string{"event", "cost bucket", "count"},
	}
	for _, k := range trace.Kinds() {
		h := hist[k]
		if h == nil {
			continue
		}
		for b, n := range h {
			if n == 0 {
				continue
			}
			label := "0"
			if b > 0 {
				label = fmt.Sprintf("[%d, %d)", 1<<(b-1), 1<<b)
			}
			t.AddRow(k.String(), label, n)
		}
	}
	return t
}
