package report

import "fmt"

// This file renders the tuning-campaign surfaces: top-k configuration
// rankings, per-knob marginal gains, and the Figure 10 flowchart-regret
// table. The row structs are plain data so internal/tune (and anything
// else) can feed them without this package knowing about campaigns.

// ConfigRank is one configuration's full-size measurement for ranking.
type ConfigRank struct {
	Key    string  // canonical configuration identity
	Cycles float64 // measured wall cycles
	LAR    float64 // local access ratio
}

// TopConfigsTable ranks configurations by cycles ascending and renders
// the best k (all of them when k <= 0), each with its latency reduction
// versus the given baseline cycles (pass the OS default or 0 to omit a
// meaningful baseline column).
func TopConfigsTable(title string, rows []ConfigRank, k int, baseline float64) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"rank", "configuration", "cycles", "LAR", "vs default"},
	}
	if k <= 0 || k > len(rows) {
		k = len(rows)
	}
	for i := 0; i < k; i++ {
		r := rows[i]
		vs := "-"
		if baseline > 0 {
			vs = Pct((baseline - r.Cycles) / baseline)
		}
		t.AddRow(i+1, r.Key, Billions(r.Cycles), fmt.Sprintf("%.3f", r.LAR), vs)
	}
	return t
}

// KnobMarginal is one axis value's aggregate over every configuration
// sharing it: how the knob moves the mean and the attainable best.
type KnobMarginal struct {
	Axis   string
	Value  string
	Mean   float64 // mean cycles across configurations with this value
	Best   float64 // cheapest configuration with this value
	Trials int
}

// KnobMarginalsTable renders per-knob marginal gains: for every axis
// value, its mean and best cycles, and the penalty of the mean versus the
// best mean on the same axis (0% marks the axis' best value — the knob's
// marginal gain is the spread of this column).
func KnobMarginalsTable(title string, rows []KnobMarginal) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"knob", "value", "trials", "mean cycles", "best cycles", "mean vs axis best"},
	}
	bestMean := map[string]float64{}
	for _, r := range rows {
		if m, ok := bestMean[r.Axis]; !ok || r.Mean < m {
			bestMean[r.Axis] = r.Mean
		}
	}
	for _, r := range rows {
		penalty := 0.0
		if b := bestMean[r.Axis]; b > 0 {
			penalty = (r.Mean - b) / b
		}
		t.AddRow(r.Axis, r.Value, r.Trials, Billions(r.Mean), Billions(r.Best), Pct(penalty))
	}
	return t
}

// RegretRow is one machine x workload cell of the flowchart-regret
// validation: what the Figure 10 advisor recommended versus the campaign
// optimum, both measured identically.
type RegretRow struct {
	Machine       string
	Workload      string
	AdvisedKey    string
	AdvisedCycles float64
	BestKey       string
	BestCycles    float64
}

// Regret returns the relative penalty of following the flowchart instead
// of the measured optimum: (advised - best) / best, >= 0 when the
// optimum is truly optimal.
func (r RegretRow) Regret() float64 {
	if r.BestCycles == 0 {
		return 0
	}
	return (r.AdvisedCycles - r.BestCycles) / r.BestCycles
}

// FlowchartRegretTable renders the advisor-vs-optimum comparison across
// machines and workloads. Regret close to 0% means the decision flowchart
// lands on (or next to) the true optimum of the knob space.
func FlowchartRegretTable(title string, rows []RegretRow) *Table {
	t := &Table{
		Title: title,
		Header: []string{"machine", "workload", "advised configuration", "advised cycles",
			"optimum configuration", "optimum cycles", "regret"},
	}
	for _, r := range rows {
		t.AddRow(r.Machine, r.Workload, r.AdvisedKey, Billions(r.AdvisedCycles),
			r.BestKey, Billions(r.BestCycles), Pct(r.Regret()))
	}
	return t
}
