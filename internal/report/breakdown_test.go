package report

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// goldenProfile runs a small profiled workload on Machine B so the
// breakdown fixtures carry real attribution (deterministic for the fixed
// seed).
func goldenProfile() *machine.Profile {
	m := machine.NewB()
	cfg := machine.DefaultConfig(4)
	cfg.Seed = 11
	m.Configure(cfg)
	m.Observe(machine.ObserveOptions{Profile: true})
	m.Run(4, func(t *machine.Thread) {
		base := t.Malloc(256 << 10)
		for off := uint64(0); off < 256<<10; off += 64 {
			t.Write(base+off, 8)
		}
		t.Charge(10_000)
		t.Free(base, 256<<10)
	})
	return m.Profile()
}

func TestBreakdownTableGolden(t *testing.T) {
	p := goldenProfile()
	var buf bytes.Buffer
	BreakdownTable("golden: cycle breakdown",
		BreakdownColumn{Name: "default", Profile: p},
		BreakdownColumn{Name: "empty", Profile: nil},
	).Render(&buf)
	checkGolden(t, "breakdown.txt", buf.Bytes())
}

func TestNodeMatrixTableGolden(t *testing.T) {
	var buf bytes.Buffer
	NodeMatrixTable("golden: node access matrix", goldenProfile()).Render(&buf)
	checkGolden(t, "node_matrix.txt", buf.Bytes())
}

func TestFoldedStacksGolden(t *testing.T) {
	var buf bytes.Buffer
	err := FoldedStacks(&buf,
		FoldedProfile{Name: "golden/default", Profile: goldenProfile()},
		FoldedProfile{Name: "skipped", Profile: nil})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "folded.txt", buf.Bytes())
}

func TestFoldedStacksFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := FoldedStacks(&buf, FoldedProfile{Name: "x", Profile: goldenProfile()}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no stacks emitted")
	}
	for _, l := range lines {
		// Every line: frame;frame;frame <integer count>.
		parts := strings.Split(l, ";")
		if len(parts) != 3 {
			t.Fatalf("line %q: want 3 frames", l)
		}
		tail := strings.Fields(parts[2])
		if len(tail) != 2 {
			t.Fatalf("line %q: last frame should be 'component count'", l)
		}
		if strings.ContainsAny(tail[1], ".e") {
			t.Fatalf("line %q: count %q not an integer", l, tail[1])
		}
	}
}

func TestBreakdownPercentagesSum(t *testing.T) {
	tbl := BreakdownTable("t", BreakdownColumn{Name: "c", Profile: goldenProfile()})
	var sum float64
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "total") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(row[1]), "%f%%", &v); err != nil {
			t.Fatalf("cell %q: %v", row[1], err)
		}
		sum += v
	}
	if sum < 99.0 || sum > 101.0 {
		t.Errorf("breakdown percentages sum to %.2f, want ~100", sum)
	}
}

func TestChromeCounterTracks(t *testing.T) {
	m := machine.NewB()
	cfg := machine.DefaultConfig(4)
	cfg.Seed = 11
	m.Configure(cfg)
	m.Observe(machine.ObserveOptions{SnapEvery: 1e5})
	m.Run(4, func(th *machine.Thread) {
		base := th.Malloc(512 << 10)
		for off := uint64(0); off < 512<<10; off += 64 {
			th.Write(base+off, 8)
		}
	})
	var buf bytes.Buffer
	err := ChromeTrace(&buf, TraceProcess{
		Name:      "counters",
		FreqGHz:   2.1,
		Events:    []trace.Event{},
		Snapshots: m.Snapshots(),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"C"`, "dram accesses", "kernel activity", "cache pressure"} {
		if !strings.Contains(out, want) {
			t.Errorf("counter track output missing %q", want)
		}
	}
}
