package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/orchestrator"
	"repro/internal/span"
)

// This file renders the causal-observability surfaces of the serving
// stack: the orchestrator's per-tick decision journal and the span-based
// p999 blame attribution.

// DecisionsCell is one cell's journal for DecisionsTable.
type DecisionsCell struct {
	Cell string
	Decs []orchestrator.Decision
}

// DecisionsTable renders orchestrator decision journals: one row per tick
// with its telemetry digest (alive threads), the verdict mix of its rule
// evaluations, the actions it planned, and the budget flow (accrued,
// spent, pool balance). It is the human-readable view of the same records
// the Chrome trace overlays as orch_decision events.
func DecisionsTable(title string, cells []DecisionsCell) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"cell", "tick", "cycle", "alive", "verdicts", "actions", "accrued", "spent", "pool"},
	}
	for _, c := range cells {
		for _, d := range c.Decs {
			t.AddRow(c.Cell, d.Tick, fmt.Sprintf("%.0f", d.Cycle), d.Alive,
				verdictMix(d.Evals), actionMix(d.Actions),
				fmt.Sprintf("%.0f", d.Accrued), fmt.Sprintf("%.0f", d.Spent),
				fmt.Sprintf("%.0f", d.Pool))
		}
	}
	return t
}

// verdictMix compresses a tick's rule evaluations to "verdict:count"
// pairs, sorted by verdict name ("-" for a tick with no evaluations).
func verdictMix(evals []orchestrator.ThreadEval) string {
	if len(evals) == 0 {
		return "-"
	}
	counts := map[string]int{}
	for _, e := range evals {
		counts[e.Verdict]++
	}
	names := make([]string, 0, len(counts))
	for v := range counts {
		names = append(names, v)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, v := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", v, counts[v]))
	}
	return strings.Join(parts, " ")
}

// actionMix compresses a tick's planned actions: thread moves and
// reweights by count, page moves by total batch size ("-" for an
// observe-only tick).
func actionMix(actions []orchestrator.Action) string {
	if len(actions) == 0 {
		return "-"
	}
	var threads, reweights, clears, pages int
	for _, a := range actions {
		switch a.Kind {
		case "thread_move":
			threads++
		case "page_move":
			pages += a.Pages
		case "reweight":
			reweights++
		case "clear_weights":
			clears++
		}
	}
	var parts []string
	if threads > 0 {
		parts = append(parts, fmt.Sprintf("thread_move:%d", threads))
	}
	if pages > 0 {
		parts = append(parts, fmt.Sprintf("page_move:%dp", pages))
	}
	if reweights > 0 {
		parts = append(parts, fmt.Sprintf("reweight:%d", reweights))
	}
	if clears > 0 {
		parts = append(parts, fmt.Sprintf("clear_weights:%d", clears))
	}
	return strings.Join(parts, " ")
}

// BlameCell is one cell's blame rows for BlameTable.
type BlameCell struct {
	Cell string
	Rows []span.BlameRow
}

// BlameTable renders a span-based tail blame attribution: per cell,
// mechanism and initiator, the share of service-window cycles over all
// measured requests versus over the p999 tail cohort. The delta column is
// the signal — a mechanism×initiator over-represented in the tail is what
// the tail is blamed on.
func BlameTable(title string, cells []BlameCell) *Table {
	t := &Table{
		Title: title,
		Header: []string{"cell", "mechanism", "initiator",
			"all cycles", "tail cycles", "all share", "tail share", "delta"},
	}
	for _, c := range cells {
		for _, r := range c.Rows {
			t.AddRow(c.Cell, r.Mechanism, r.Initiator,
				fmt.Sprintf("%.0f", r.AllCycles), fmt.Sprintf("%.0f", r.TailCycles),
				fmt.Sprintf("%.4f", r.AllShare), fmt.Sprintf("%.4f", r.TailShare),
				fmt.Sprintf("%+.4f", r.TailShare-r.AllShare))
		}
	}
	return t
}
