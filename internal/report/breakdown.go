package report

import (
	"fmt"
	"io"
	"math"

	"repro/internal/machine"
)

// BreakdownColumn pairs a cycle-attribution profile with the label of the
// configuration that produced it, one column of a BreakdownTable.
type BreakdownColumn struct {
	Name    string
	Profile *machine.Profile
}

// BreakdownTable renders cycle-attribution profiles as a percentage-stacked
// breakdown: one row per component bucket, one column per configuration,
// each cell that bucket's share of the configuration's total attributed
// cycles. Buckets at zero in every column are omitted. A final row carries
// the absolute totals the percentages are of.
func BreakdownTable(title string, cols ...BreakdownColumn) *Table {
	t := &Table{Title: title, Header: make([]string, 0, len(cols)+1)}
	t.Header = append(t.Header, "component")
	for _, c := range cols {
		t.Header = append(t.Header, c.Name)
	}
	totals := make([][]float64, len(cols))
	sums := make([]float64, len(cols))
	for i, c := range cols {
		if c.Profile == nil {
			totals[i] = make([]float64, machine.NumBuckets)
			continue
		}
		totals[i] = c.Profile.Totals()
		for _, v := range totals[i] {
			sums[i] += v
		}
	}
	for _, b := range machine.Buckets() {
		nonzero := false
		for i := range cols {
			if totals[i][b] != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			continue
		}
		row := make([]any, 0, len(cols)+1)
		row = append(row, b.String())
		for i := range cols {
			pct := 0.0
			if sums[i] > 0 {
				pct = totals[i][b] / sums[i]
			}
			row = append(row, fmt.Sprintf("%5.1f%%", pct*100))
		}
		t.AddRow(row...)
	}
	row := make([]any, 0, len(cols)+1)
	row = append(row, "total (Gcycles)")
	for i := range cols {
		row = append(row, Billions(sums[i]))
	}
	t.AddRow(row...)
	return t
}

// RemoteDRAMShare returns the fraction of a profile's attributed cycles
// spent in the dram_remote_* buckets — the scalar the numaware experiment
// gates chunked storage on (a lower share means the operator kept its
// accesses on the local node). Returns 0 for a nil or empty profile.
func RemoteDRAMShare(p *machine.Profile) float64 {
	if p == nil {
		return 0
	}
	totals := p.Totals()
	var sum, remote float64
	for b, v := range totals {
		sum += v
		switch machine.Bucket(b) {
		case machine.BucketDRAMRemote1, machine.BucketDRAMRemote2, machine.BucketDRAMRemote3:
			remote += v
		}
	}
	if sum == 0 {
		return 0
	}
	return remote / sum
}

// NodeMatrixTable renders a profile's N×N node access matrix numastat
// style: row i column j counts DRAM accesses issued from node i served by
// memory on node j, with a local-access-ratio column.
func NodeMatrixTable(title string, p *machine.Profile) *Table {
	t := &Table{Title: title, Header: make([]string, 0, len(p.Matrix)+2)}
	t.Header = append(t.Header, "from\\to")
	for j := range p.Matrix {
		t.Header = append(t.Header, fmt.Sprintf("node%d", j))
	}
	t.Header = append(t.Header, "LAR")
	for i, rowCounts := range p.Matrix {
		row := make([]any, 0, len(rowCounts)+2)
		row = append(row, fmt.Sprintf("node%d", i))
		var total, local uint64
		for j, n := range rowCounts {
			row = append(row, n)
			total += n
			if i == j {
				local = n
			}
		}
		lar := "-"
		if total > 0 {
			lar = fmt.Sprintf("%.3f", float64(local)/float64(total))
		}
		row = append(row, lar)
		t.AddRow(row...)
	}
	return t
}

// FoldedProfile pairs a profile with the root frame its stacks fold under
// (typically the experiment/cell id).
type FoldedProfile struct {
	Name    string
	Profile *machine.Profile
}

// FoldedStacks writes profiles in folded-stack format — one
// "root;thread N;component <cycles>" line per thread×bucket with a nonzero
// count — loadable by speedscope (https://speedscope.app) and Brendan
// Gregg's flamegraph.pl. Cycle counts are rounded to integers as the
// format requires; output order (profile, thread, bucket) is
// deterministic.
func FoldedStacks(w io.Writer, profs ...FoldedProfile) error {
	for _, fp := range profs {
		if fp.Profile == nil {
			continue
		}
		for _, tb := range fp.Profile.Threads {
			for b, c := range tb.Buckets {
				n := int64(math.Round(c))
				if n <= 0 {
					continue
				}
				_, err := fmt.Fprintf(w, "%s;thread %d;%s %d\n",
					fp.Name, tb.Thread, machine.Bucket(b).String(), n)
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}
