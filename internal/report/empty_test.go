package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

// These tests audit every rendering surface on empty inputs — the serving
// edge cases (a warmup-only phase completes zero requests; an untraced
// cell has an empty event stream) must yield valid, stable artifacts, not
// degenerate output.

// renderAllFormats exercises the three table encoders and returns the text
// rendering; it fails the test on an encoder error or empty output.
func renderAllFormats(t *testing.T, tab *Table) string {
	t.Helper()
	if tab == nil {
		t.Fatal("nil table")
	}
	var txt, csv, js bytes.Buffer
	tab.Render(&txt)
	tab.RenderCSV(&csv)
	if err := tab.RenderJSON(&js); err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("RenderJSON emitted invalid JSON: %v", err)
	}
	if txt.Len() == 0 || csv.Len() == 0 {
		t.Fatal("empty rendering")
	}
	return txt.String()
}

// TestTraceTablesEmptyInput checks the trace tables on a nil event stream:
// header-only tables that render in every format.
func TestTraceTablesEmptyInput(t *testing.T) {
	for _, tab := range []*Table{TraceSummary(nil), TraceCostHistogram(nil)} {
		if len(tab.Rows) != 0 {
			t.Errorf("%q: %d rows from an empty stream", tab.Title, len(tab.Rows))
		}
		out := renderAllFormats(t, tab)
		if !strings.Contains(out, "==") {
			t.Errorf("%q: missing title banner:\n%s", tab.Title, out)
		}
	}
}

// TestChromeTraceEmptyInput checks the Chrome exporter stays a valid JSON
// array with no processes, and with processes that carry no events.
func TestChromeTraceEmptyInput(t *testing.T) {
	var noProcs bytes.Buffer
	if err := ChromeTrace(&noProcs); err != nil {
		t.Fatal(err)
	}
	var arr []any
	if err := json.Unmarshal(noProcs.Bytes(), &arr); err != nil {
		t.Fatalf("no-process export is not valid JSON: %v\n%s", err, noProcs.String())
	}
	if len(arr) != 0 {
		t.Errorf("no-process export has %d entries", len(arr))
	}

	var emptyProc bytes.Buffer
	err := ChromeTrace(&emptyProc, TraceProcess{Name: "cell", FreqGHz: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(emptyProc.Bytes(), &arr); err != nil {
		t.Fatalf("zero-event process export is not valid JSON: %v", err)
	}
	if len(arr) != 1 {
		t.Fatalf("zero-event process: %d entries, want 1 (process_name metadata)", len(arr))
	}
	meta, ok := arr[0].(map[string]any)
	if !ok || meta["name"] != "process_name" {
		t.Errorf("sole entry is not the process_name record: %v", arr[0])
	}
}

// TestServeTablesEmptyInput checks the serving tables with no rows and
// with the all-zero rows a warmup-only phase produces: no NaN, no panic,
// valid output in every format.
func TestServeTablesEmptyInput(t *testing.T) {
	renderAllFormats(t, LatencySummaryTable("empty", []string{"5x"}, nil))
	renderAllFormats(t, LatencyHistogramTable("empty", nil))
	renderAllFormats(t, TailAttributionTable("empty", nil))
	renderAllFormats(t, LatencyRegretTable("empty", nil))

	// A warmup-only cell: zero requests, zero percentiles, missing SLO
	// attainments (fewer than the labels) render as "-", never NaN.
	zero := LatencySummaryTable("warmup-only", []string{"5x", "20x"},
		[]LatencyRow{{Cell: "default/poisson", Arrival: "poisson"}})
	out := renderAllFormats(t, zero)
	if strings.Contains(out, "NaN") {
		t.Errorf("zero row rendered NaN:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing SLO attainment not rendered as '-':\n%s", out)
	}

	// A regret row against a zero optimum must not divide by zero.
	if r := (ServeRegretRow{AdvisedP99: 100}).Regret(); r != 0 {
		t.Errorf("zero-optimum regret = %v, want 0", r)
	}
	if r := (RegretRow{AdvisedCycles: 100}).Regret(); r != 0 {
		t.Errorf("zero-optimum flowchart regret = %v, want 0", r)
	}
}

// TestTraceSummaryIgnoresUnknownKinds ensures a stream containing a kind
// outside the table's fixed arrays is dropped, not an index panic.
func TestTraceSummaryIgnoresUnknownKinds(t *testing.T) {
	evs := []trace.Event{{Kind: trace.Kind(200), Cost: 5}}
	tab := TraceSummary(evs)
	if len(tab.Rows) != 0 {
		t.Errorf("unknown kind produced rows: %v", tab.Rows)
	}
	renderAllFormats(t, tab)
}
