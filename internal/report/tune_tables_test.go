package report

import (
	"bytes"
	"testing"
)

// Fixed tuning-table inputs exercising ranking, the baseline column, the
// per-axis penalty math, and a negative-regret cell.

func goldenRanks() []ConfigRank {
	return []ConfigRank{
		{Key: "Sparse/Interleave/tbbmalloc/numa=off/thp=off", Cycles: 1.0e9, LAR: 0.91},
		{Key: "Dense/First Touch/jemalloc/numa=on/thp=on", Cycles: 1.2e9, LAR: 0.55},
		{Key: "None/First Touch/ptmalloc/numa=on/thp=on", Cycles: 2.5e9, LAR: 0.42},
	}
}

func TestTopConfigsTableGolden(t *testing.T) {
	var buf bytes.Buffer
	TopConfigsTable("golden: top configs", goldenRanks(), 2, 2.5e9).Render(&buf)
	checkGolden(t, "tune_top.txt", buf.Bytes())
}

func TestTopConfigsTableNoBaseline(t *testing.T) {
	tab := TopConfigsTable("no baseline", goldenRanks(), 0, 0)
	if len(tab.Rows) != 3 {
		t.Fatalf("k<=0 should rank every row, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "-" {
			t.Errorf("baseline 0 must render '-', got %v", row[len(row)-1])
		}
	}
}

func TestKnobMarginalsTableGolden(t *testing.T) {
	rows := []KnobMarginal{
		{Axis: "placement", Value: "None", Mean: 2.0e9, Best: 1.4e9, Trials: 80},
		{Axis: "placement", Value: "Sparse", Mean: 1.5e9, Best: 1.0e9, Trials: 80},
		{Axis: "thp", Value: "on", Mean: 1.8e9, Best: 1.1e9, Trials: 120},
		{Axis: "thp", Value: "off", Mean: 1.7e9, Best: 1.0e9, Trials: 120},
	}
	var buf bytes.Buffer
	KnobMarginalsTable("golden: knob marginals", rows).Render(&buf)
	checkGolden(t, "tune_marginals.txt", buf.Bytes())
}

func TestFlowchartRegretTableGolden(t *testing.T) {
	rows := []RegretRow{
		{Machine: "A", Workload: "W1",
			AdvisedKey: "Sparse/Interleave/tbbmalloc/numa=off/thp=off", AdvisedCycles: 1.05e9,
			BestKey: "Sparse/Interleave/tbbmalloc/numa=off/thp=on", BestCycles: 1.0e9},
		{Machine: "C", Workload: "W3",
			AdvisedKey: "Dense/Interleave/tbbmalloc/numa=off/thp=off", AdvisedCycles: 0.9e9,
			BestKey: "Dense/First Touch/jemalloc/numa=on/thp=on", BestCycles: 1.0e9},
	}
	if got := rows[0].Regret(); got <= 0.049 || got >= 0.051 {
		t.Errorf("regret = %v, want 0.05", got)
	}
	if got := rows[1].Regret(); got >= 0 {
		t.Errorf("advised beating the campaign best must report negative regret, got %v", got)
	}
	if (RegretRow{}).Regret() != 0 {
		t.Error("zero best cycles must not divide by zero")
	}
	var buf bytes.Buffer
	FlowchartRegretTable("golden: flowchart regret", rows).Render(&buf)
	checkGolden(t, "tune_regret.txt", buf.Bytes())
}
