// Package span defines the request-level observability layer above the
// machine's event trace: deterministic hierarchical spans for every
// simulated request of a serving run — session → request → {queue-wait,
// service, per-operator phase} — each carrying its profile-bucket delta,
// counter window and the trace events that fell inside it.
//
// Spans are assembled purely from telemetry the simulation already
// produces (cycle stamps, ThreadBuckets diffs, counter diffs, recorded
// events): nothing in this package touches a machine, so span collection
// is observation-only by construction. IDs derive from the run's xrand
// seed material, so the same run always yields byte-identical spans.
//
// The JSONL serialization is schema "repro/spans/v1" with the same strict
// reader contract as the experiment records ("repro/bench/v2"): unknown
// fields, wrong schemas and structurally invalid spans are rejected, so a
// write/read round-trip validates the schema.
package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema identifies the span JSONL layout. Bump on any field-meaning
// change; the strict reader rejects other schemas.
const Schema = "repro/spans/v1"

// Span kinds, hierarchical: a session parents its requests; a request
// parents its queue-wait and service spans; a service span parents its
// per-operator phases.
const (
	KindSession   = "session"
	KindRequest   = "request"
	KindQueueWait = "queue_wait"
	KindService   = "service"
	KindPhase     = "phase"
)

// Span is one node of a serving run's span tree, one JSON object per
// JSONL line. Two clock domains appear, by kind: session, request and
// queue_wait spans are stamped on the arrival-overlay clock (the G/G/c
// queueing simulation), service and phase spans on their serving thread's
// cycle account. GStart/GEnd additionally window service spans on the
// machine's global clock, which is what kernel-daemon events are stamped
// with — the join key for blame attribution.
type Span struct {
	Schema string `json:"schema"`
	// Cell labels the run (experiment cell or CLI label); stamped by the
	// harness, empty when standalone.
	Cell string `json:"cell,omitempty"`
	// ID is stable and unique within a run, derived from the run's seed
	// material (never 0). Parent is the enclosing span's ID, 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	// Name is the request kind ("point", "join", ...) or phase name.
	Name string `json:"name"`
	// Seq is the request's index in arrival order, -1 for session spans.
	Seq int `json:"seq"`
	// Session is the owning session id.
	Session uint64 `json:"session"`
	// Thread is the serving thread, -1 where not applicable.
	Thread int `json:"thread"`
	// Start/End are cycle stamps in the kind's clock domain (see above).
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// GStart/GEnd window service spans on the machine's global clock.
	GStart float64 `json:"g_start,omitempty"`
	GEnd   float64 `json:"g_end,omitempty"`
	// Buckets is the span's profile-bucket cycle delta (nonzero buckets
	// only, keyed by machine.Bucket name); nil when profiling was off.
	Buckets map[string]float64 `json:"buckets,omitempty"`
	// Events counts trace events that fell inside the span's window,
	// keyed "kind/initiator" (e.g. "page_migration/orchestrator"); nil
	// when no recorder was attached.
	Events map[string]uint64 `json:"events,omitempty"`
	// Counters is the span's perf-counter window delta (nonzero counters
	// only, keyed by the machine.Counters JSON names).
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// Duration returns End - Start in the span's clock domain.
func (s Span) Duration() float64 { return s.End - s.Start }

// WriteJSONL writes one JSON object per span, newline-delimited. Missing
// Schema fields are stamped. Output order is input order; spans from a
// fixed seed serialize byte-identically.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		s := spans[i]
		if s.Schema == "" {
			s.Schema = Schema
		}
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

var validKinds = map[string]bool{
	KindSession: true, KindRequest: true, KindQueueWait: true,
	KindService: true, KindPhase: true,
}

// ReadJSONL parses newline-delimited spans, rejecting unknown fields,
// wrong schemas, unknown kinds and spans without an id — the strict
// complement of WriteJSONL.
func ReadJSONL(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		var s Span
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if s.Schema != Schema {
			return nil, fmt.Errorf("line %d: schema %q, want %q", line, s.Schema, Schema)
		}
		if s.ID == 0 {
			return nil, fmt.Errorf("line %d: span has no id", line)
		}
		if !validKinds[s.Kind] {
			return nil, fmt.Errorf("line %d: unknown span kind %q", line, s.Kind)
		}
		if s.End < s.Start {
			return nil, fmt.Errorf("line %d: span ends (%g) before it starts (%g)", line, s.End, s.Start)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// BlameRow attributes one migration-family mechanism's service cycles to
// one initiator, over all requests versus the tail cohort alone.
type BlameRow struct {
	// Mechanism is the profile bucket carrying the cost (page_migration,
	// thread_migration, tlb_shootdown, thp_work, autonuma_scan).
	Mechanism string
	// Initiator is the mechanism's driver ("autonuma", "orchestrator",
	// "os", "khugepaged", or "unknown" when no event identifies one).
	Initiator string
	// AllCycles/TailCycles are the mechanism×initiator's service-window
	// cycles summed over all measured requests / tail requests.
	AllCycles  float64
	TailCycles float64
	// AllShare/TailShare normalize by the cohort's total service cycles.
	AllShare  float64
	TailShare float64
}

// blameKinds maps each migration-family profile bucket to the event kinds
// whose initiator tags split its cycles: page copies and the shootdowns
// they broadcast follow page_migration events, THP work follows splits
// and collapses, and so on.
var blameKinds = map[string][]string{
	"thread_migration": {"thread_migration"},
	"page_migration":   {"page_migration"},
	"tlb_shootdown":    {"page_migration"},
	"thp_work":         {"huge_split", "huge_collapse"},
	"autonuma_scan":    {"autonuma_scan"},
}

// blameMechanisms is the stable row order.
var blameMechanisms = []string{
	"thread_migration", "page_migration", "tlb_shootdown", "thp_work", "autonuma_scan",
}

// Blame joins service spans against their event windows: each span's
// migration-family bucket cycles are split across initiators in
// proportion to the matching events inside the span's window ("unknown"
// when no event identifies a driver), summed over all spans and over the
// tail cohort. tail holds the request-span IDs of the tail cohort;
// service spans join it through their Parent. Rows with no cycles are
// omitted; order is mechanism-major, initiator name minor.
func Blame(spans []Span, tail map[uint64]bool) []BlameRow {
	type key struct{ mech, init string }
	cyc := map[key]*BlameRow{}
	var allTotal, tailTotal float64
	for _, s := range spans {
		if s.Kind != KindService {
			continue
		}
		inTail := tail[s.Parent] || tail[s.ID]
		allTotal += s.Duration()
		if inTail {
			tailTotal += s.Duration()
		}
		for _, mech := range blameMechanisms {
			c := s.Buckets[mech]
			if c == 0 {
				continue
			}
			// Split this span's mechanism cycles by the initiator mix of
			// the matching events in its window.
			counts := map[string]uint64{}
			var total uint64
			for _, kind := range blameKinds[mech] {
				prefix := kind + "/"
				for ek, n := range s.Events {
					if len(ek) > len(prefix) && ek[:len(prefix)] == prefix {
						counts[ek[len(prefix):]] += n
						total += n
					}
				}
			}
			add := func(init string, amount float64) {
				k := key{mech, init}
				r := cyc[k]
				if r == nil {
					r = &BlameRow{Mechanism: mech, Initiator: init}
					cyc[k] = r
				}
				r.AllCycles += amount
				if inTail {
					r.TailCycles += amount
				}
			}
			if total == 0 {
				add("unknown", c)
				continue
			}
			inits := make([]string, 0, len(counts))
			for init := range counts {
				inits = append(inits, init)
			}
			sort.Strings(inits)
			for _, init := range inits {
				add(init, c*float64(counts[init])/float64(total))
			}
		}
	}
	var rows []BlameRow
	for _, mech := range blameMechanisms {
		var inits []string
		for k := range cyc {
			if k.mech == mech {
				inits = append(inits, k.init)
			}
		}
		sort.Strings(inits)
		for _, init := range inits {
			r := cyc[key{mech, init}]
			if allTotal > 0 {
				r.AllShare = r.AllCycles / allTotal
			}
			if tailTotal > 0 {
				r.TailShare = r.TailCycles / tailTotal
			}
			rows = append(rows, *r)
		}
	}
	return rows
}
