package span

import (
	"repro/internal/machine"
	"repro/internal/xrand"
)

// Helpers for harnesses assembling spans from machine telemetry
// (internal/serve, the TPC-H CLI). They only transform already-read
// values — counter windows, bucket deltas, seed material — so using them
// keeps span collection observation-only.

// ID draws the next nonzero span id from a derived stream; ids are a
// function of the seed material alone, so the same run always assigns
// the same ids regardless of what else consumed randomness.
func ID(r *xrand.Rand) uint64 {
	id := r.Uint64()
	for id == 0 {
		id = r.Uint64()
	}
	return id
}

// CounterDelta returns the counter window b - a, field-wise.
func CounterDelta(a, b machine.Counters) machine.Counters {
	return machine.Counters{
		ThreadMigrations: b.ThreadMigrations - a.ThreadMigrations,
		CacheAccesses:    b.CacheAccesses - a.CacheAccesses,
		CacheMisses:      b.CacheMisses - a.CacheMisses,
		TLBMisses:        b.TLBMisses - a.TLBMisses,
		LocalAccesses:    b.LocalAccesses - a.LocalAccesses,
		RemoteAccesses:   b.RemoteAccesses - a.RemoteAccesses,
		MinorFaults:      b.MinorFaults - a.MinorFaults,
		PageMigrations:   b.PageMigrations - a.PageMigrations,
		HugePromotions:   b.HugePromotions - a.HugePromotions,
		HugeSplits:       b.HugeSplits - a.HugeSplits,
	}
}

// CounterMap flattens a counter window to its nonzero JSON-named fields,
// the Span.Counters layout; an all-zero window yields nil.
func CounterMap(c machine.Counters) map[string]uint64 {
	out := map[string]uint64{}
	put := func(name string, v uint64) {
		if v != 0 {
			out[name] = v
		}
	}
	put("thread_migrations", c.ThreadMigrations)
	put("cache_accesses", c.CacheAccesses)
	put("cache_misses", c.CacheMisses)
	put("tlb_misses", c.TLBMisses)
	put("local_accesses", c.LocalAccesses)
	put("remote_accesses", c.RemoteAccesses)
	put("minor_faults", c.MinorFaults)
	put("page_migrations", c.PageMigrations)
	put("huge_promotions", c.HugePromotions)
	put("huge_splits", c.HugeSplits)
	if len(out) == 0 {
		return nil
	}
	return out
}

// BucketMap flattens a profile-bucket cycle delta to its nonzero buckets
// by name, the Span.Buckets layout; nil (unprofiled) and all-zero deltas
// yield nil.
func BucketMap(delta []float64) map[string]float64 {
	var out map[string]float64
	for b, c := range delta {
		if c == 0 {
			continue
		}
		if out == nil {
			out = map[string]float64{}
		}
		out[machine.Bucket(b).String()] = c
	}
	return out
}

// BucketDelta returns b - a element-wise (aligned bucket vectors, e.g.
// two Profile.Totals reads bracketing a window); nil inputs yield nil.
func BucketDelta(a, b []float64) []float64 {
	if b == nil {
		return nil
	}
	out := make([]float64, len(b))
	for i := range b {
		out[i] = b[i]
		if i < len(a) {
			out[i] -= a[i]
		}
	}
	return out
}
