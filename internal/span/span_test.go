package span

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleSpans() []Span {
	return []Span{
		{ID: 0x10, Kind: KindSession, Name: "session", Seq: -1, Session: 3, Thread: -1, Start: 0, End: 9000},
		{ID: 0x21, Parent: 0x10, Kind: KindRequest, Name: "point", Seq: 0, Session: 3, Thread: 1, Start: 0, End: 4000},
		{ID: 0x22, Parent: 0x21, Kind: KindQueueWait, Name: "point", Seq: 0, Session: 3, Thread: 1, Start: 0, End: 500},
		{ID: 0x23, Parent: 0x21, Kind: KindService, Name: "point", Seq: 0, Session: 3, Thread: 1,
			Start: 1000, End: 4500, GStart: 20000, GEnd: 23500,
			Buckets:  map[string]float64{"page_migration": 900, "compute": 2000},
			Events:   map[string]uint64{"page_migration/autonuma": 1, "page_migration/orchestrator": 2},
			Counters: map[string]uint64{"remote_accesses": 7}},
		{ID: 0x24, Parent: 0x23, Kind: KindPhase, Name: "probe", Seq: 0, Session: 3, Thread: 1, Start: 1000, End: 3000},
	}
}

// TestRoundTrip pushes spans through the writer and strict reader: every
// serialized field must survive, and the schema must be stamped.
func TestRoundTrip(t *testing.T) {
	in := sampleSpans()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip: got %d spans, want %d", len(out), len(in))
	}
	for i := range out {
		if out[i].Schema != Schema {
			t.Errorf("span %d: schema %q", i, out[i].Schema)
		}
		if out[i].ID != in[i].ID || out[i].Parent != in[i].Parent ||
			out[i].Kind != in[i].Kind || out[i].Name != in[i].Name ||
			out[i].Seq != in[i].Seq || out[i].Session != in[i].Session ||
			out[i].Thread != in[i].Thread ||
			out[i].Start != in[i].Start || out[i].End != in[i].End ||
			out[i].GStart != in[i].GStart || out[i].GEnd != in[i].GEnd {
			t.Errorf("span %d drifted: got %+v want %+v", i, out[i], in[i])
		}
	}
	svc := out[3]
	if svc.Buckets["page_migration"] != 900 || svc.Events["page_migration/orchestrator"] != 2 ||
		svc.Counters["remote_accesses"] != 7 {
		t.Errorf("service span payload drifted: %+v", svc)
	}
}

// TestWriteDeterministic pins byte-identity: serializing the same spans
// twice must produce the same bytes (map keys are sorted by encoding/json).
func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two serializations of the same spans differ")
	}
}

// TestStrictReader pins the reader's rejection contract.
func TestStrictReader(t *testing.T) {
	good := `{"schema":"repro/spans/v1","id":1,"kind":"request","name":"point","seq":0,"session":0,"thread":0,"start":0,"end":10}`
	cases := map[string]string{
		"wrong schema":  strings.Replace(good, "spans/v1", "spans/v0", 1),
		"zero id":       strings.Replace(good, `"id":1`, `"id":0`, 1),
		"unknown kind":  strings.Replace(good, `"kind":"request"`, `"kind":"mystery"`, 1),
		"end < start":   strings.Replace(good, `"end":10`, `"end":-1`, 1),
		"unknown field": strings.Replace(good, `"seq":0`, `"seq":0,"bogus":1`, 1),
	}
	if _, err := ReadJSONL(strings.NewReader(good + "\n")); err != nil {
		t.Fatalf("valid span rejected: %v", err)
	}
	for name, line := range cases {
		if _, err := ReadJSONL(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBlame checks the attribution math: mechanism cycles split across
// initiators by event counts, with the unknown fallback, and tail shares
// computed over the tail cohort only.
func TestBlame(t *testing.T) {
	spans := []Span{
		// Tail request: 600 page_migration cycles split 1:2 between
		// autonuma and orchestrator; 300 thread_migration cycles with no
		// matching event (unknown).
		{ID: 0x31, Kind: KindRequest, Seq: 0, Thread: 0, Start: 0, End: 100},
		{ID: 0x32, Parent: 0x31, Kind: KindService, Seq: 0, Thread: 0, Start: 0, End: 1000,
			Buckets: map[string]float64{"page_migration": 600, "thread_migration": 300},
			Events:  map[string]uint64{"page_migration/autonuma": 1, "page_migration/orchestrator": 2}},
		// Non-tail request: clean service window, no migration cycles.
		{ID: 0x41, Kind: KindRequest, Seq: 1, Thread: 1, Start: 0, End: 100},
		{ID: 0x42, Parent: 0x41, Kind: KindService, Seq: 1, Thread: 1, Start: 0, End: 3000},
	}
	rows := Blame(spans, map[uint64]bool{0x31: true})
	got := map[string]BlameRow{}
	for _, r := range rows {
		got[r.Mechanism+"/"+r.Initiator] = r
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
	pm := got["page_migration/orchestrator"]
	if !approx(pm.AllCycles, 400) || !approx(pm.TailCycles, 400) {
		t.Errorf("orchestrator page_migration cycles: %+v", pm)
	}
	// All service cycles: 1000 + 3000; tail service cycles: 1000.
	if !approx(pm.AllShare, 400.0/4000) || !approx(pm.TailShare, 400.0/1000) {
		t.Errorf("orchestrator page_migration shares: %+v", pm)
	}
	if r := got["page_migration/autonuma"]; !approx(r.AllCycles, 200) {
		t.Errorf("autonuma page_migration cycles: %+v", r)
	}
	if r := got["thread_migration/unknown"]; !approx(r.AllCycles, 300) {
		t.Errorf("unknown thread_migration cycles: %+v", r)
	}
	// Row order is mechanism-major (thread before page per blameMechanisms),
	// initiator-name minor.
	if rows[0].Mechanism != "thread_migration" ||
		rows[1].Initiator != "autonuma" || rows[2].Initiator != "orchestrator" {
		t.Errorf("row order drifted: %+v", rows)
	}
}
